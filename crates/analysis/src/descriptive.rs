//! Descriptive statistics: means, variation, quartiles and box-plot summaries.

/// Arithmetic mean of a slice. Returns 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation. Returns 0 for slices shorter than 2.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Coefficient of variation: standard deviation normalized to the mean (the metric
/// annotated under every subplot of Fig. 3). Returns 0 if the mean is 0.
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let m = mean(values);
    if m == 0.0 {
        0.0
    } else {
        std_dev(values) / m
    }
}

/// Linearly interpolated quantile (`q` in `[0, 1]`) of an unsorted slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// The box-and-whiskers summary used by Figs. 3 and 7: quartiles, the interquartile
/// range (IQR), whiskers at the central 1.5·IQR range (clipped to observed data),
/// mean and extremes.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxSummary {
    /// Number of data points.
    pub count: usize,
    /// Minimum observed value.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Arithmetic mean (the white circles in Fig. 3).
    pub mean: f64,
    /// Lower whisker: smallest observation ≥ `q1 - 1.5·IQR`.
    pub whisker_low: f64,
    /// Upper whisker: largest observation ≤ `q3 + 1.5·IQR`.
    pub whisker_high: f64,
}

impl BoxSummary {
    /// Compute the summary of a (non-empty) data set.
    pub fn of(values: &[f64]) -> BoxSummary {
        assert!(!values.is_empty(), "cannot summarize an empty data set");
        let q1 = quantile(values, 0.25);
        let q3 = quantile(values, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let whisker_low = values
            .iter()
            .cloned()
            .filter(|&v| v >= lo_fence)
            .fold(f64::INFINITY, f64::min);
        let whisker_high = values
            .iter()
            .cloned()
            .filter(|&v| v <= hi_fence)
            .fold(f64::NEG_INFINITY, f64::max);
        BoxSummary {
            count: values.len(),
            min,
            q1,
            median: median(values),
            q3,
            max,
            mean: mean(values),
            whisker_low,
            whisker_high,
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Normalize every value to the minimum of the slice (used for the "normalized to
/// the minimum BER/HC_first" y-axes of Figs. 4 and 6). Panics if the minimum is 0.
pub fn normalize_to_min(values: &[f64]) -> Vec<f64> {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(min > 0.0, "cannot normalize to a zero minimum");
    values.iter().map(|v| v / min).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_data() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
        assert!((coefficient_of_variation(&v) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(median(&v), 2.5);
    }

    #[test]
    fn box_summary_of_uniform_data() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = BoxSummary::of(&v);
        assert_eq!(b.count, 100);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 100.0);
        assert!((b.median - 50.5).abs() < 1e-9);
        assert!(b.q1 < b.median && b.median < b.q3);
        assert!(b.whisker_low >= b.min && b.whisker_high <= b.max);
    }

    #[test]
    fn whiskers_exclude_outliers() {
        let mut v: Vec<f64> = (1..=99).map(|i| i as f64 / 10.0).collect();
        v.push(1000.0); // extreme outlier
        let b = BoxSummary::of(&v);
        assert!(b.whisker_high < 1000.0);
        assert_eq!(b.max, 1000.0);
    }

    #[test]
    fn normalize_to_min_makes_minimum_one() {
        let v = [2.0, 4.0, 8.0];
        assert_eq!(normalize_to_min(&v), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn box_summary_rejects_empty() {
        let _ = BoxSummary::of(&[]);
    }
}
