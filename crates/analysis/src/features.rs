//! Expansion of a DRAM row's spatial coordinates into binary features.
//!
//! The paper's §5.4.2 correlation analysis takes, for every victim row, "each bit in
//! the binary representation" of four properties — bank address, row address,
//! subarray address and the row's distance to the sense amplifiers — and asks how
//! well each bit predicts the row's `HC_first`.

/// Which spatial property a feature bit comes from (the columns of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureKind {
    /// A bit of the bank address ("Ba" in Table 3).
    BankBit,
    /// A bit of the row address ("Ro").
    RowBit,
    /// A bit of the subarray index ("Sa").
    SubarrayBit,
    /// A bit of the row's distance to its local sense amplifiers ("Dist.").
    DistanceBit,
}

impl std::fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureKind::BankBit => write!(f, "Ba"),
            FeatureKind::RowBit => write!(f, "Ro"),
            FeatureKind::SubarrayBit => write!(f, "Sa"),
            FeatureKind::DistanceBit => write!(f, "Dist"),
        }
    }
}

/// One binary spatial feature: a named bit of one of the four spatial properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpatialFeature {
    /// Which property the bit belongs to.
    pub kind: FeatureKind,
    /// Bit position within the property (0 = least significant).
    pub bit: u32,
}

impl SpatialFeature {
    /// Human-readable name like `"Ro bit 3"`.
    pub fn name(&self) -> String {
        format!("{} bit {}", self.kind, self.bit)
    }
}

/// The spatial coordinates of one row, as integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowCoordinates {
    /// Bank address.
    pub bank: usize,
    /// Row address (logical, as used by the memory controller).
    pub row: usize,
    /// Subarray index of the row within its bank.
    pub subarray: usize,
    /// Distance (in rows) from the row to its local sense amplifiers.
    pub distance_to_sense_amps: usize,
}

/// Enumerate every spatial feature up to the given bit widths.
pub fn spatial_features(
    bank_bits: u32,
    row_bits: u32,
    subarray_bits: u32,
    distance_bits: u32,
) -> Vec<SpatialFeature> {
    let mut out = Vec::new();
    for bit in 0..bank_bits {
        out.push(SpatialFeature {
            kind: FeatureKind::BankBit,
            bit,
        });
    }
    for bit in 0..row_bits {
        out.push(SpatialFeature {
            kind: FeatureKind::RowBit,
            bit,
        });
    }
    for bit in 0..subarray_bits {
        out.push(SpatialFeature {
            kind: FeatureKind::SubarrayBit,
            bit,
        });
    }
    for bit in 0..distance_bits {
        out.push(SpatialFeature {
            kind: FeatureKind::DistanceBit,
            bit,
        });
    }
    out
}

/// Evaluate a feature on one row's coordinates.
pub fn evaluate_feature(feature: &SpatialFeature, coords: &RowCoordinates) -> bool {
    let value = match feature.kind {
        FeatureKind::BankBit => coords.bank,
        FeatureKind::RowBit => coords.row,
        FeatureKind::SubarrayBit => coords.subarray,
        FeatureKind::DistanceBit => coords.distance_to_sense_amps,
    };
    (value >> feature.bit) & 1 == 1
}

/// Evaluate a feature across many rows, producing the boolean vector expected by
/// [`crate::classify::binary_feature_f1`].
pub fn feature_vector(feature: &SpatialFeature, rows: &[RowCoordinates]) -> Vec<bool> {
    rows.iter().map(|c| evaluate_feature(feature, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_counts() {
        let features = spatial_features(2, 4, 3, 5);
        assert_eq!(features.len(), 2 + 4 + 3 + 5);
        let row_bits = features
            .iter()
            .filter(|f| f.kind == FeatureKind::RowBit)
            .count();
        assert_eq!(row_bits, 4);
    }

    #[test]
    fn evaluation_extracts_the_right_bit() {
        let coords = RowCoordinates {
            bank: 0b10,
            row: 0b1010,
            subarray: 0b1,
            distance_to_sense_amps: 0b100,
        };
        assert!(evaluate_feature(
            &SpatialFeature {
                kind: FeatureKind::BankBit,
                bit: 1
            },
            &coords
        ));
        assert!(!evaluate_feature(
            &SpatialFeature {
                kind: FeatureKind::RowBit,
                bit: 0
            },
            &coords
        ));
        assert!(evaluate_feature(
            &SpatialFeature {
                kind: FeatureKind::RowBit,
                bit: 3
            },
            &coords
        ));
        assert!(evaluate_feature(
            &SpatialFeature {
                kind: FeatureKind::DistanceBit,
                bit: 2
            },
            &coords
        ));
    }

    #[test]
    fn names_are_table3_style() {
        let f = SpatialFeature {
            kind: FeatureKind::SubarrayBit,
            bit: 7,
        };
        assert_eq!(f.name(), "Sa bit 7");
    }

    #[test]
    fn feature_vector_matches_elementwise_evaluation() {
        let rows: Vec<RowCoordinates> = (0..16)
            .map(|r| RowCoordinates {
                bank: 1,
                row: r,
                subarray: r / 4,
                distance_to_sense_amps: r % 4,
            })
            .collect();
        let f = SpatialFeature {
            kind: FeatureKind::RowBit,
            bit: 1,
        };
        let v = feature_vector(&f, &rows);
        assert_eq!(v.len(), 16);
        assert!(v[2]);
        assert!(!v[4]);
    }
}
