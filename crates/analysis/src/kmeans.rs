//! One-dimensional k-means clustering and silhouette scoring.
//!
//! The subarray reverse-engineering methodology (§5.4.1, Key Insight 1) clusters
//! DRAM rows by row address and single-sided hammer reach using k-means, sweeping
//! the number of clusters `k` and choosing the value that maximizes the silhouette
//! score (Fig. 8). A one-dimensional implementation is sufficient because the
//! clustering operates on row addresses of candidate boundary segments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroid positions, ascending.
    pub centroids: Vec<f64>,
    /// Cluster assignment of each input point (index into `centroids`).
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
}

/// Run k-means on 1-D data with k-means++-style seeding. Deterministic per seed.
///
/// Panics if `k` is 0 or larger than the number of points.
pub fn kmeans_1d(points: &[f64], k: usize, seed: u64, max_iters: usize) -> KMeansResult {
    assert!(
        k > 0 && k <= points.len(),
        "invalid k = {k} for {} points",
        points.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ initialization.
    let pick = |rng: &mut StdRng| {
        let i = rng.random_range(0..points.len());
        points.get(i).copied().unwrap_or(0.0)
    };
    let mut centroids = Vec::with_capacity(k);
    centroids.push(pick(&mut rng));
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|&p| {
                centroids
                    .iter()
                    .map(|&c| (p - c) * (p - c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 0.0 {
            // All remaining points coincide with existing centroids.
            centroids.push(pick(&mut rng));
            continue;
        }
        let mut target = rng.random::<f64>() * total;
        let mut chosen = points.last().copied().unwrap_or(0.0);
        for (&p, &d) in points.iter().zip(&dists) {
            if target <= d {
                chosen = p;
                break;
            }
            target -= d;
        }
        centroids.push(chosen);
    }

    let mut assignments = vec![0usize; points.len()];
    for _ in 0..max_iters {
        // Assignment step: nearest centroid, first index winning ties (the
        // same tie-break `min_by` over squared distances used).
        let mut changed = false;
        for (slot, &p) in assignments.iter_mut().zip(points) {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (j, &c) in centroids.iter().enumerate() {
                let d = (p - c) * (p - c);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for (&a, &p) in assignments.iter().zip(points) {
            if let (Some(s), Some(c)) = (sums.get_mut(a), counts.get_mut(a)) {
                *s += p;
                *c += 1;
            }
        }
        for ((c, &s), &n) in centroids.iter_mut().zip(&sums).zip(&counts) {
            if n > 0 {
                *c = s / n as f64;
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(&p, &a)| {
            let c = centroids.get(a).copied().unwrap_or(0.0);
            (p - c) * (p - c)
        })
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
    }
}

/// Silhouette score of a 1-D clustering, in `[-1, 1]`; higher is better.
///
/// For each point, `a` is the mean distance to points of its own cluster and `b` the
/// mean distance to points of the nearest other cluster; the silhouette is
/// `(b - a) / max(a, b)`, averaged over all points. Singleton clusters score 0 for
/// their point, and the function returns 0 when there are fewer than 2 clusters.
pub fn silhouette_score_1d(points: &[f64], assignments: &[usize]) -> f64 {
    assert_eq!(points.len(), assignments.len());
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 || points.len() < 2 {
        return 0.0;
    }
    // Group points per cluster.
    let mut clusters: Vec<Vec<f64>> = vec![Vec::new(); k];
    for (&a, &p) in assignments.iter().zip(points) {
        if let Some(cluster) = clusters.get_mut(a) {
            cluster.push(p);
        }
    }
    let mut total = 0.0;
    for (&p, &mine) in points.iter().zip(assignments) {
        let Some(own) = clusters.get(mine) else {
            continue;
        };
        if own.len() <= 1 {
            continue; // silhouette of a singleton is 0
        }
        // The self-distance |p - p| contributes 0, and the divisor excludes the
        // point itself, as in the standard silhouette a(i).
        let a = own.iter().map(|&q| (p - q).abs()).sum::<f64>() / (own.len() - 1) as f64;
        let b = clusters
            .iter()
            .enumerate()
            .filter(|(j, c)| *j != mine && !c.is_empty())
            .map(|(_, c)| c.iter().map(|&q| (p - q).abs()).sum::<f64>() / c.len() as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b).max(1e-12);
        }
    }
    total / points.len() as f64
}

/// Sweep `k` over a range and return `(k, silhouette)` pairs, clustering with
/// [`kmeans_1d`]. This is the Fig. 8 curve; the caller picks the argmax.
pub fn silhouette_sweep(
    points: &[f64],
    k_range: std::ops::RangeInclusive<usize>,
    seed: u64,
) -> Vec<(usize, f64)> {
    k_range
        .filter(|&k| k >= 2 && k <= points.len())
        .map(|k| {
            let result = kmeans_1d(points, k, seed, 60);
            (k, silhouette_score_1d(points, &result.assignments))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<f64> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(0.0 + i as f64 * 0.01);
            pts.push(10.0 + i as f64 * 0.01);
            pts.push(20.0 + i as f64 * 0.01);
        }
        pts
    }

    #[test]
    fn kmeans_recovers_well_separated_clusters() {
        let pts = three_blobs();
        let r = kmeans_1d(&pts, 3, 1, 100);
        let mut centroids = r.centroids.clone();
        centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((centroids[0] - 0.1).abs() < 0.5);
        assert!((centroids[1] - 10.1).abs() < 0.5);
        assert!((centroids[2] - 20.1).abs() < 0.5);
        assert!(r.inertia < 1.0);
    }

    #[test]
    fn silhouette_peaks_at_true_k() {
        let pts = three_blobs();
        let sweep = silhouette_sweep(&pts, 2..=6, 3);
        let best = sweep
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best.0, 3, "sweep: {sweep:?}");
        assert!(best.1 > 0.8);
    }

    #[test]
    fn silhouette_is_low_for_overclustering() {
        let pts = three_blobs();
        let at3 = silhouette_sweep(&pts, 3..=3, 5)[0].1;
        let at6 = silhouette_sweep(&pts, 6..=6, 5)[0].1;
        assert!(at3 > at6);
    }

    #[test]
    fn kmeans_is_deterministic_per_seed() {
        let pts = three_blobs();
        let a = kmeans_1d(&pts, 3, 7, 50);
        let b = kmeans_1d(&pts, 3, 7, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(silhouette_score_1d(&[1.0, 2.0], &[0, 0]), 0.0);
        let r = kmeans_1d(&[5.0, 5.0, 5.0], 2, 1, 10);
        assert_eq!(r.assignments.len(), 3);
    }

    #[test]
    #[should_panic]
    fn kmeans_rejects_k_larger_than_points() {
        let _ = kmeans_1d(&[1.0, 2.0], 3, 1, 10);
    }
}
